// Baseline broadcasts: BIG dissemination, BFB restart tree, OPT schedule -
// correctness and agreement with their analytic models.
#include <gtest/gtest.h>

#include "analysis/baseline_models.hpp"
#include "baselines/bfb.hpp"
#include "baselines/big.hpp"
#include "baselines/opt_tree.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

RunConfig cfg_n(NodeId n, std::uint64_t seed = 1, Step l_over_o = 2) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP{.l_over_o = l_over_o, .o_us = 1.0};
  cfg.seed = seed;
  cfg.record_node_detail = true;
  return cfg;
}

// ----------------------------------------------------------------- BIG --

TEST(Big, NeighborOffsetsArePowersOfTwo) {
  EXPECT_EQ(big_neighbor_offsets(4096).size(), 12u);
  EXPECT_EQ(big_neighbor_offsets(16), (std::vector<NodeId>{1, 2, 4, 8}));
  EXPECT_EQ(big_neighbor_offsets(10), (std::vector<NodeId>{1, 2, 4, 8}));
  EXPECT_EQ(big_neighbor_offsets(1), (std::vector<NodeId>{}));
}

TEST(Big, WorkIsExactlyNLogN) {
  const RunMetrics m = run_once(Algo::kBig, {}, cfg_n(256));
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_EQ(m.msgs_total, big_work(256));  // 256 * 8
}

TEST(Big, LatencyNearAnalyticModel) {
  for (const NodeId n : {64, 256, 1024}) {
    const RunMetrics m = run_once(Algo::kBig, {}, cfg_n(n));
    ASSERT_TRUE(m.all_active_colored);
    const double pred = big_latency_us(n, LogP::piz_daint());
    const double sim = static_cast<double>(m.t_last_colored);
    // Same shape; the ascending-neighbor order is within ~25% of the model.
    EXPECT_NEAR(sim, pred, 0.25 * pred) << "n=" << n;
  }
}

TEST(Big, ToleratesUpToLogNMinusOneFailures) {
  // 8 = log2(256); graph stays connected for any log2(N)-1 = 7 pre-failures.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg = cfg_n(256, seed);
    Xoshiro256 frng(seed * 77);
    cfg.failures =
        FailureSchedule::random(256, big_max_failures(256), 0, 0, frng);
    const RunMetrics m = run_once(Algo::kBig, {}, cfg);
    EXPECT_TRUE(m.all_active_colored) << "seed=" << seed;
  }
}

TEST(Big, WorkUnchangedByFailures) {
  RunConfig cfg = cfg_n(128);
  cfg.failures.pre_failed = {3, 40, 77};
  const RunMetrics m = run_once(Algo::kBig, {}, cfg);
  // Static routing: alive nodes still blindly send to every neighbor.
  EXPECT_EQ(m.msgs_total, static_cast<std::int64_t>(125) * 7);
}

// ----------------------------------------------------------------- BFB --

TEST(Bfb, TreeHelpers) {
  EXPECT_EQ(bfb_children(0, 8), (std::vector<NodeId>{1, 2, 4}));
  EXPECT_EQ(bfb_children(1, 8), (std::vector<NodeId>{3, 5}));
  EXPECT_EQ(bfb_children(2, 8), (std::vector<NodeId>{6}));
  EXPECT_EQ(bfb_children(3, 8), (std::vector<NodeId>{7}));
  EXPECT_EQ(bfb_children(7, 8), (std::vector<NodeId>{}));
  EXPECT_EQ(bfb_parent(1), 0);
  EXPECT_EQ(bfb_parent(5), 1);
  EXPECT_EQ(bfb_parent(6), 2);
  EXPECT_EQ(bfb_parent(7), 3);
}

TEST(Bfb, EveryRankReachableExactlyOnce) {
  // The children lists partition ranks 1..m-1 for any m.
  for (const NodeId m : {2, 3, 7, 16, 100}) {
    std::vector<int> seen(static_cast<std::size_t>(m), 0);
    for (NodeId r = 0; r < m; ++r)
      for (const NodeId c : bfb_children(r, m)) ++seen[static_cast<std::size_t>(c)];
    EXPECT_EQ(seen[0], 0);
    for (NodeId r = 1; r < m; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], 1);
    // parent() inverts children().
    for (NodeId r = 0; r < m; ++r)
      for (const NodeId c : bfb_children(r, m)) EXPECT_EQ(bfb_parent(c), r);
  }
}

TEST(Bfb, FailureFreeRunAcksToRoot) {
  const RunMetrics m = run_once(Algo::kBfb, {}, cfg_n(128));
  EXPECT_TRUE(m.all_active_colored);
  ASSERT_NE(m.t_root_complete, kNever);
  // Root completion ~ 2 * (2O+L) * log2(N) per the model, +-35% for the
  // serialization of child sends.
  const double pred = bfb_latency_us(128, 0, LogP::piz_daint());
  EXPECT_NEAR(static_cast<double>(m.t_root_complete), pred, 0.35 * pred);
}

TEST(Bfb, PreFailedNodesAreExcludedUpFront) {
  RunConfig cfg = cfg_n(64);
  cfg.failures.pre_failed = {9, 17, 33};
  const RunMetrics m = run_once(Algo::kBfb, {}, cfg);
  EXPECT_EQ(m.n_active, 61);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_root_complete, kNever);
}

TEST(Bfb, OnlineFailureTriggersRestartAndStillCompletes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunConfig cfg = cfg_n(64, seed);
    // Kill an early-rank node while the tree is being built.
    cfg.failures.online.push_back({static_cast<NodeId>(1 + seed % 4), 4});
    const RunMetrics m = run_once(Algo::kBfb, {}, cfg);
    EXPECT_TRUE(m.all_active_colored) << "seed=" << seed;
    EXPECT_NE(m.t_root_complete, kNever);
    EXPECT_FALSE(m.hit_max_steps);
  }
}

TEST(Bfb, LateFailureAfterDeliveryNeedsNoRestart) {
  RunConfig cfg = cfg_n(32);
  cfg.failures.online.push_back({31, 200});  // long after completion
  const RunMetrics m = run_once(Algo::kBfb, {}, cfg);
  EXPECT_NE(m.t_root_complete, kNever);
  EXPECT_LT(m.t_root_complete, 200);
}

TEST(Bfb, ModelValuesMatchPaperTable7) {
  const LogP pd = LogP::piz_daint();
  EXPECT_DOUBLE_EQ(bfb_latency_us(4096, 0, pd), 96.0);
  EXPECT_DOUBLE_EQ(bfb_latency_us(4096, 1, pd), 144.0);
  EXPECT_EQ(bfb_work(4096, 0), 4096);
  EXPECT_EQ(bfb_work(4096, 1), 8192);
  EXPECT_EQ(bfb_online_failures(3), 1);
  EXPECT_EQ(bfb_online_failures(0), 0);
}

TEST(Big, ModelValuesMatchPaperTable7) {
  const LogP pd = LogP::piz_daint();
  EXPECT_DOUBLE_EQ(big_latency_us(4096, pd), 60.0);
  EXPECT_EQ(big_work(4096), 49152);
  EXPECT_EQ(big_max_failures(4096), 11);
}

// ----------------------------------------------------------------- OPT --

TEST(Opt, ColoringRecurrenceMatchesFigure1) {
  // L=O=1: f(t)=f(t-1)+f(t-3); N=1024 colored at t=20 (Figure 1 "opt").
  EXPECT_EQ(opt_latency_steps(1024, LogP::unit()), 20);
  EXPECT_LT(opt_colored_at(19, LogP::unit()), 1024);
  EXPECT_GE(opt_colored_at(20, LogP::unit()), 1024);
}

TEST(Opt, RecurrenceSmallValues) {
  const LogP unit = LogP::unit();
  EXPECT_EQ(opt_colored_at(0, unit), 1);
  EXPECT_EQ(opt_colored_at(2, unit), 1);
  EXPECT_EQ(opt_colored_at(3, unit), 2);
  EXPECT_EQ(opt_colored_at(4, unit), 3);
  EXPECT_EQ(opt_colored_at(5, unit), 4);
  EXPECT_EQ(opt_colored_at(6, unit), 6);  // 4 + f(3) = 4+2
}

TEST(Opt, SimulatedScheduleAttainsTheBound) {
  for (const NodeId n : {2, 16, 100, 512}) {
    RunConfig cfg = cfg_n(n, 1, 1);  // L=O=1
    const RunMetrics m = run_once(Algo::kOpt, {}, cfg);
    ASSERT_TRUE(m.all_active_colored) << n;
    EXPECT_EQ(m.t_last_colored, opt_latency_steps(n, cfg.logp)) << n;
    EXPECT_EQ(m.msgs_total, n - 1);  // exactly one message per node
  }
}

TEST(Opt, ScheduleColorsEveryRankOnce) {
  const auto sched = OptSchedule::build(64, LogP::unit());
  std::vector<int> colored(64, 0);
  colored[0] = 1;
  for (const auto& sends : sched->sends)
    for (const auto& s : sends) ++colored[static_cast<std::size_t>(s.target)];
  for (int c : colored) EXPECT_EQ(c, 1);
}

TEST(Opt, NonRootZeroRootWorks) {
  RunConfig cfg = cfg_n(32, 1, 1);
  cfg.root = 7;
  const RunMetrics m = run_once(Algo::kOpt, {}, cfg);
  EXPECT_TRUE(m.all_active_colored);
}

}  // namespace
}  // namespace cg

// Extension modules: corrected-gossip all-reduce, OCG chained correction,
// network-jitter robustness, contiguous failure patterns, and the Claim-1
// multi-broadcast filter.
#include <gtest/gtest.h>

#include <memory>

#include "collectives/allreduce.hpp"
#include "gossip/ccg.hpp"
#include "gossip/ocg_chain.hpp"
#include "harness/runner.hpp"
#include "gossip/timing.hpp"
#include "proto/dedup.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/topology.hpp"

namespace cg {
namespace {

// ------------------------------------------------------------ allreduce --

RunConfig ar_cfg(NodeId n, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

TEST(Allreduce, MaxConvergesEverywhere) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AllreduceNode::Params p;
    p.T = 14;
    p.corr_sends = allreduce_sweeps(128, p.T, LogP::unit(), 1e-4);
    const AllreduceResult r = run_allreduce(p, ar_cfg(128, seed));
    EXPECT_EQ(r.expected, 127);
    EXPECT_TRUE(r.all_correct) << "seed " << seed;
  }
}

TEST(Allreduce, MinAndOrOperators) {
  AllreduceNode::Params p;
  p.T = 12;
  p.corr_sends = allreduce_sweeps(64, p.T, LogP::unit(), 1e-4);
  p.op = ReduceOp::kMin;
  p.contribution = [](NodeId i) { return static_cast<std::int64_t>(i) + 5; };
  AllreduceResult r = run_allreduce(p, ar_cfg(64, 3));
  EXPECT_EQ(r.expected, 5);
  EXPECT_TRUE(r.all_correct);

  p.op = ReduceOp::kOr;
  p.contribution = [](NodeId i) { return std::int64_t{1} << (i % 16); };
  r = run_allreduce(p, ar_cfg(64, 4));
  EXPECT_EQ(r.expected, 0xFFFF);
  EXPECT_TRUE(r.all_correct);
}

TEST(Allreduce, SingleNode) {
  AllreduceNode::Params p;
  p.T = 4;
  p.corr_sends = 1;
  const AllreduceResult r = run_allreduce(p, ar_cfg(1, 1));
  EXPECT_TRUE(r.all_correct);
  EXPECT_EQ(r.expected, 0);
}

TEST(Allreduce, ShortGossipStillFixedByCorrection) {
  // Nearly no gossip: the deterministic sweep must still spread values
  // C positions; choose C = N/2 so coverage is guaranteed transitively.
  AllreduceNode::Params p;
  p.T = 2;
  p.corr_sends = 32;  // N/2 on a 64-ring
  const AllreduceResult r = run_allreduce(p, ar_cfg(64, 9));
  EXPECT_TRUE(r.all_correct);
}

TEST(Allreduce, SurvivesPreFailedNodes) {
  AllreduceNode::Params p;
  p.T = 14;
  p.corr_sends = allreduce_sweeps(128, p.T, LogP::unit(), 1e-4) + 4;
  RunConfig cfg = ar_cfg(128, 5);
  cfg.failures.pre_failed = {7, 8, 9, 70};
  const AllreduceResult r = run_allreduce(p, cfg);
  // Dead nodes' values may or may not appear (they never send), but all
  // ACTIVE nodes must agree on a value at least as large as the active max
  // under kMax; with id contributions the global max owner (127) is alive.
  EXPECT_EQ(r.expected, 127);
  EXPECT_TRUE(r.all_correct);
}

TEST(Allreduce, SweepSizingIsMonotone) {
  const int c10 = allreduce_sweeps(1024, 10, LogP::unit(), 1e-4);
  const int c20 = allreduce_sweeps(1024, 20, LogP::unit(), 1e-4);
  EXPECT_GE(c10, c20);  // longer gossip -> shorter correction
  EXPECT_GE(allreduce_sweeps(1024, 20, LogP::unit(), 1e-8), c20);
}

// ------------------------------------------------------------ OCG-CHAIN --

std::shared_ptr<std::vector<std::uint8_t>> bitmap(NodeId n,
                                                  const std::vector<NodeId>& s) {
  auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
  for (const NodeId i : s) (*bm)[static_cast<std::size_t>(i)] = 1;
  return bm;
}

TEST(OcgChain, ChainsMeetInTheMiddle) {
  // g-nodes 0 and 8 on a 16-ring: each gap of 7 is eaten from both ends.
  RunConfig cfg;
  cfg.n = 16;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.record_node_detail = true;
  OcgChainNode::Params p;
  p.T = 0;
  p.horizon = OcgChainNode::chain_horizon(0, 8, cfg.logp);
  p.seed_colored = bitmap(16, {8});
  Engine<OcgChainNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
  // Work: every uncolored node relays once + each g-node seeds twice:
  // 14 relays... minus the two *last* relays absorbed: still sent. Each
  // of the 14 c-nodes forwards exactly once; 2 g-nodes send 2 each.
  EXPECT_EQ(m.msgs_correction, 14 + 4);
}

TEST(OcgChain, WorkIsLinearInUncoloredNotInGNodes) {
  // Dense g-set: chain correction work stays ~2 messages per g-node while
  // plain OCG's sweep would send corr_sends per g-node.
  std::vector<NodeId> gs;
  for (NodeId i = 1; i < 32; i += 2) gs.push_back(i);
  RunConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  OcgChainNode::Params p;
  p.T = 0;
  p.horizon = OcgChainNode::chain_horizon(0, 4, cfg.logp);
  p.seed_colored = bitmap(32, gs);
  Engine<OcgChainNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
  // 17 g-nodes seed <=2 each; 15 c-nodes forward <=1 each.
  EXPECT_LE(m.msgs_correction, 17 * 2 + 15);
}

TEST(OcgChain, GossipPlusChainsReachEveryone) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.n = 256;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    AlgoConfig acfg;
    acfg.T = 16;
    acfg.ocg_corr_sends = 12;  // K_bar budget for the horizon
    const RunMetrics m = run_once(Algo::kOcgChain, acfg, cfg);
    EXPECT_TRUE(m.all_active_colored) << seed;
    EXPECT_FALSE(m.hit_max_steps);
    EXPECT_NE(m.t_complete, kNever);
  }
}

TEST(OcgChain, UsesFarLessCorrectionWorkThanOcg) {
  std::int64_t chain_work = 0, ocg_work = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.n = 512;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    AlgoConfig chain;
    chain.T = 18;
    chain.ocg_corr_sends = 10;
    chain_work += run_once(Algo::kOcgChain, chain, cfg).msgs_correction;
    AlgoConfig ocg;
    ocg.T = 18;
    ocg.ocg_corr_sends = 10;
    ocg_work += run_once(Algo::kOcg, ocg, cfg).msgs_correction;
  }
  EXPECT_LT(chain_work * 3, ocg_work);  // >3x fewer correction messages
}

// --------------------------------------------------------------- jitter --

class JitterSweep : public ::testing::TestWithParam<Step> {};

TEST_P(JitterSweep, CcgAndFcgSurviveReordering) {
  const Step jitter = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunConfig cfg;
    cfg.n = 128;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    cfg.jitter_max = jitter;
    AlgoConfig acfg;
    acfg.T = 14;
    acfg.fcg_f = 1;
    const RunMetrics ccg = run_once(Algo::kCcg, acfg, cfg);
    EXPECT_TRUE(ccg.all_active_colored) << "jitter=" << jitter;
    EXPECT_FALSE(ccg.hit_max_steps);
    const RunMetrics fcg = run_once(Algo::kFcg, acfg, cfg);
    EXPECT_TRUE(fcg.all_active_colored) << "jitter=" << jitter;
    EXPECT_TRUE(fcg.all_or_nothing_delivery());
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, JitterSweep,
                         ::testing::Values<Step>(0, 1, 2, 5));

TEST(Jitter, DeterministicAndMatchesAcrossEngines) {
  RunConfig cfg;
  cfg.n = 96;
  cfg.logp = LogP::unit();
  cfg.seed = 11;
  cfg.jitter_max = 3;
  CcgNode::Params p;
  p.T = 12;
  Engine<CcgNode> serial1(cfg, p);
  Engine<CcgNode> serial2(cfg, p);
  ParallelEngine<CcgNode> par(cfg, p, 3);
  const RunMetrics a = serial1.run();
  const RunMetrics b = serial2.run();
  const RunMetrics c = par.run();
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.t_last_colored, b.t_last_colored);
  EXPECT_EQ(a.msgs_total, c.msgs_total);
  EXPECT_EQ(a.t_last_colored, c.t_last_colored);
}

// ------------------------------------------------------- drain padding --

TEST(DrainExtra, RecoversOcgOnSlowLinks) {
  // Cross-rack extra latency breaks OCG's flat-tuned schedule; padding
  // the drain window (and giving gossip the extra time) restores it.
  const NodeId n = 256;
  const Step extra = 4;
  auto run = [&](Step drain_extra, Step t_bonus) {
    int full = 0;
    for (std::uint64_t s = 1; s <= 15; ++s) {
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = LogP::piz_daint();
      cfg.seed = s;
      cfg.link_extra = two_level_topology(32, extra);
      cfg.link_extra_max = extra;
      AlgoConfig acfg;
      acfg.T = 22 + t_bonus;
      acfg.ocg_corr_sends = 8;
      acfg.drain_extra = drain_extra;
      if (run_once(Algo::kOcg, acfg, cfg).all_active_colored) ++full;
    }
    return full;
  };
  const int flat = run(0, 0);
  const int padded = run(extra, extra);
  EXPECT_LT(flat, 15);      // the flat schedule misses runs
  EXPECT_GT(padded, flat);  // padding recovers most of them
  EXPECT_GE(padded, 13);
}

TEST(DrainExtra, DelaysCorrectionStart) {
  VectorTrace trace;
  RunConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::unit();
  cfg.seed = 2;
  cfg.trace = &trace;
  AlgoConfig acfg;
  acfg.T = 8;
  acfg.drain_extra = 5;
  run_once(Algo::kCcg, acfg, cfg);
  Step first_corr = kNever;
  for (const auto& ev : trace.events())
    if (ev.kind == TraceEvent::Kind::kSend && is_ring_corr(ev.tag))
      first_corr = std::min(first_corr, ev.step);
  EXPECT_EQ(first_corr, corr_start(8, cfg.logp) + 5);
}

// ------------------------------------------------- contiguous failures --

TEST(ContiguousFailures, BuilderProducesTheBlock) {
  const FailureSchedule pre = FailureSchedule::contiguous(10, 8, 4);
  EXPECT_EQ(pre.pre_failed, (std::vector<NodeId>{8, 9, 0, 1}));
  EXPECT_TRUE(pre.online.empty());
  const FailureSchedule on = FailureSchedule::contiguous(10, 2, 2, 7);
  EXPECT_TRUE(on.pre_failed.empty());
  ASSERT_EQ(on.online.size(), 2u);
  EXPECT_EQ(on.online[0].node, 2);
  EXPECT_EQ(on.online[0].at_step, 7);
}

TEST(ContiguousFailures, CcgSweepsAcrossADeadBlock) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 4;
  cfg.failures = FailureSchedule::contiguous(64, 20, 10);
  AlgoConfig acfg;
  acfg.T = 12;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
  EXPECT_EQ(m.n_active, 54);
  EXPECT_TRUE(m.all_active_colored);  // sweep walks over the dead block
}

TEST(ContiguousFailures, FcgAllOrNothingWhenBlockDiesOnline) {
  for (const Step at : {3, 8, 14, 20}) {
    RunConfig cfg;
    cfg.n = 64;
    cfg.logp = LogP::unit();
    cfg.seed = 6;
    cfg.failures = FailureSchedule::contiguous(64, 30, 2, at);
    AlgoConfig acfg;
    acfg.T = 12;
    acfg.fcg_f = 2;
    const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
    EXPECT_TRUE(m.all_or_nothing_delivery()) << "at=" << at;
    EXPECT_TRUE(m.all_active_delivered) << "at=" << at;
  }
}

// ----------------------------------------------------------- dedup -----

TEST(Dedup, AcceptsEachStampOnce) {
  BroadcastFilter f(8);
  BroadcastCounter root(2);
  const BroadcastStamp s1 = root.next();
  EXPECT_TRUE(f.fresh(s1));
  EXPECT_TRUE(f.accept(s1));
  EXPECT_FALSE(f.accept(s1));  // duplicate
  EXPECT_FALSE(f.fresh(s1));
  const BroadcastStamp s2 = root.next();
  EXPECT_TRUE(f.accept(s2));
  EXPECT_EQ(f.last_from(2), 2u);
}

TEST(Dedup, OldBroadcastsSupersededByNewer) {
  // Claim 1's literal rule: anything <= c[root] is discarded, so a
  // straggler of an overtaken broadcast never delivers twice.
  BroadcastFilter f(4);
  EXPECT_TRUE(f.accept({1, 5}));
  EXPECT_FALSE(f.accept({1, 3}));  // older broadcast from the same root
  EXPECT_TRUE(f.accept({2, 1}));   // independent root unaffected
}

TEST(Dedup, JoinResetsCounters) {
  BroadcastFilter veteran(4);
  veteran.accept({0, 7});
  veteran.accept({3, 2});
  BroadcastFilter rookie(4);
  rookie.reset_from(veteran);
  EXPECT_FALSE(rookie.accept({0, 7}));  // replayed history is ignored
  EXPECT_FALSE(rookie.accept({3, 1}));
  EXPECT_TRUE(rookie.accept({0, 8}));   // new traffic flows
  rookie.reset_counter(2, 10);
  EXPECT_FALSE(rookie.accept({2, 10}));
  EXPECT_TRUE(rookie.accept({2, 11}));
}

}  // namespace
}  // namespace cg

// Concurrent multi-broadcast sessions: every broadcast reaches every node
// despite sharing each node's single send slot per step.
#include <gtest/gtest.h>

#include "session/multibcast.hpp"
#include "sim/engine.hpp"

namespace cg {
namespace {

RunConfig cfg_n(NodeId n, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

MultiBcastNode::Params plans(std::initializer_list<BcastPlan> list) {
  MultiBcastNode::Params p;
  p.plans = list;
  return p;
}

TEST(Session, SingleBroadcastBehavesLikeCcg) {
  Engine<MultiBcastNode> eng(cfg_n(128, 3), plans({{0, 0, 12}}));
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_complete, kNever);
  EXPECT_FALSE(m.hit_max_steps);
}

TEST(Session, TwoConcurrentRootsBothReachEveryone) {
  Engine<MultiBcastNode> eng(cfg_n(128, 5),
                             plans({{0, 0, 12}, {64, 0, 12}}));
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);  // = both broadcasts everywhere
  for (NodeId i = 0; i < 128; ++i) {
    EXPECT_TRUE(eng.node(i).core(0).colored()) << i;
    EXPECT_TRUE(eng.node(i).core(1).colored()) << i;
  }
}

TEST(Session, EightConcurrentBroadcasts) {
  std::vector<BcastPlan> v;
  for (int b = 0; b < 8; ++b)
    v.push_back({static_cast<NodeId>(b * 16), 0, 12});
  MultiBcastNode::Params p;
  p.plans = v;
  Engine<MultiBcastNode> eng(cfg_n(128, 7), p);
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_FALSE(m.hit_max_steps);
  for (NodeId i = 0; i < 128; i += 13)
    for (std::size_t b = 0; b < 8; ++b)
      EXPECT_TRUE(eng.node(i).core(b).colored()) << i << "/" << b;
}

TEST(Session, StaggeredStartsPipeline) {
  // Broadcast 1 starts while broadcast 0's correction runs.
  Engine<MultiBcastNode> eng(cfg_n(96, 9),
                             plans({{0, 0, 11}, {48, 8, 11}}));
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Session, ContentionStretchesLatencyButNotCorrectness) {
  // Completion grows with concurrency; reach stays total.
  Step t1 = 0, t8 = 0;
  {
    Engine<MultiBcastNode> eng(cfg_n(128, 11), plans({{0, 0, 12}}));
    const RunMetrics m = eng.run();
    ASSERT_TRUE(m.all_active_colored);
    t1 = m.t_complete;
  }
  {
    std::vector<BcastPlan> v;
    for (int b = 0; b < 8; ++b)
      v.push_back({static_cast<NodeId>(b * 16 + 1), 0, 12});
    MultiBcastNode::Params p;
    p.plans = v;
    Engine<MultiBcastNode> eng(cfg_n(128, 11), p);
    const RunMetrics m = eng.run();
    ASSERT_TRUE(m.all_active_colored);
    t8 = m.t_complete;
  }
  EXPECT_GT(t8, t1);
}

TEST(Session, SameRootSequentialBroadcasts) {
  // Two broadcasts from the same root back to back.
  Engine<MultiBcastNode> eng(cfg_n(64, 13),
                             plans({{0, 0, 10}, {0, 20, 10}}));
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Session, StampDispatchIgnoresUnknownSessions) {
  // A message with an out-of-range stamp must be ignored, not crash.
  MultiBcastNode::Params p;
  p.plans = {{0, 0, 8}};
  MultiBcastNode node(p, 1, 16);
  struct FakeCtx {
    Step now() const { return 5; }
    void mark_colored() {}
    void deliver() {}
  } fake;
  Message m;
  m.tag = Tag::kFwd;
  m.src = 0;
  m.time = 63;  // no such session
  node.on_receive(fake, m);
  EXPECT_FALSE(node.core(0).colored());
}

}  // namespace
}  // namespace cg

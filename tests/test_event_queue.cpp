// Unit tests for the discrete-event kernel (calendar/bucket queue).
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace cg {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(5); });
  q.schedule_at(1, [&] { order.push_back(1); });
  q.schedule_at(3, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableWithinSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  Step seen = -1;
  q.schedule_at(10, [&] { q.schedule_in(5, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_EQ(seen, 15);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(2, [&] { ++fired; });
  q.schedule_at(1, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const auto id = q.schedule_at(0, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunUntilHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] { ++fired; });
  q.schedule_at(5, [&] { ++fired; });
  q.schedule_at(9, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 5);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenEmpty) {
  EventQueue q;
  q.run_until(42);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueue, RunMaxEvents) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

// Self-rescheduling chain without std::function: handlers are stored
// inline, so the recursive callable carries plain pointers only.
struct ChainStep {
  EventQueue* q;
  int* count;
  void operator()() const {
    if (++*count < 100) q->schedule_in(1, ChainStep{q, count});
  }
};

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int chain = 0;
  q.schedule_at(0, ChainStep{&q, &chain});
  q.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(q.now(), 99);
}

TEST(EventQueue, PendingCountsLiveOnly) {
  EventQueue q;
  const auto a = q.schedule_at(1, [] {});
  q.schedule_at(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

// Regression for the old binary-heap kernel's cancel leak: cancelled
// entries used to stay in the heap as tombstones until their fire time, so
// N schedule+cancel cycles held N dead entries.  The calendar queue must
// recycle the slot on cancel: live memory stays O(1) no matter how many
// cycles run, which the slot-pool capacity stat pins down.
TEST(EventQueue, CancelReclaimsSlotsImmediately) {
  EventQueue q;
  for (int i = 0; i < 10000; ++i) {
    const auto id = q.schedule_in(5, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.slot_capacity(), 2u);  // one slot recycled 10000 times
  EXPECT_EQ(q.stats().scheduled, 10000);
  EXPECT_EQ(q.stats().cancelled, 10000);
  EXPECT_EQ(q.stats().fired, 0);
  EXPECT_EQ(q.stats().max_live, 1);
}

// Steady-state schedule/fire traffic reaches a slot-pool plateau: the slab
// never grows past the peak number of concurrently pending events.
TEST(EventQueue, SteadyStateReusesSlots) {
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 8; ++k) q.schedule_in(1 + k % 3, [&] { ++fired; });
    q.run();
  }
  EXPECT_EQ(fired, 8000);
  EXPECT_LE(q.slot_capacity(), 16u);
  EXPECT_EQ(q.stats().fired, 8000);
  EXPECT_EQ(q.stats().scheduled, q.stats().fired + q.stats().cancelled);
}

// Events far beyond the bucket ring go to the overflow heap and still fire
// in time order, interleaved correctly with near events, preserving FIFO
// within each time.
TEST(EventQueue, FarFutureEventsFireInOrder) {
  EventQueue q(14);  // small ring to force overflow
  std::vector<int> order;
  q.schedule_at(100000, [&] { order.push_back(3); });
  q.schedule_at(500, [&] { order.push_back(1); });
  q.schedule_at(500, [&] { order.push_back(2); });
  q.schedule_at(3, [&] { order.push_back(0); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 100000);
}

// FIFO within a time must hold across the ring/overflow boundary: an
// overflow event scheduled first fires before a ring event for the same
// time scheduled later (after the window advanced).
TEST(EventQueue, OverflowKeepsFifoWithinTime) {
  EventQueue q(14);
  std::vector<int> order;
  q.schedule_at(200, [&] { order.push_back(1); });  // overflow at schedule
  q.schedule_at(190, [&] {
    // Window now covers 200: this insert goes straight to the ring and
    // must fire AFTER the migrated overflow event above.
    q.schedule_at(200, [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Regression: FIFO within a time must hold even when the window advances
// DURING a scan (next_slot jumping from a long-idle now to a later bucket)
// rather than via the overflow clock jump, which re-migrates.  Here the
// handler at t=10 schedules for t=20 while an older overflow event at 20
// is still unmigrated (migration last ran with the window at [0, 15]); the
// in-ring insert must drain the overflow heap first or the later migration
// links the older event behind the newer one.
TEST(EventQueue, OverflowFifoSurvivesWindowAdvanceDuringScan) {
  EventQueue q(14);  // ring of 16 buckets: 20 overflows at schedule time
  std::vector<int> order;
  q.schedule_at(20, [&] { order.push_back(1); });  // seq 0, overflow
  q.schedule_at(10, [&] {
    // now() == 10, so 20 is inside the window and this goes to the ring.
    q.schedule_at(20, [&] { order.push_back(2); });  // must fire second
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Same hazard through the other now()-advance that skips migration:
// run_until() jumps the clock to its horizon even when nothing fires, so a
// schedule_at() between run_until and the next run must still order behind
// an older overflow event for the same time.
TEST(EventQueue, OverflowFifoSurvivesRunUntilHorizonJump) {
  EventQueue q(14);
  std::vector<int> order;
  q.schedule_at(20, [&] { order.push_back(1); });  // overflow at schedule
  EXPECT_EQ(q.run_until(10), 0u);                  // clock jump, no events
  q.schedule_at(20, [&] { order.push_back(2); });  // in-ring, must be second
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CancelOverflowEvent) {
  EventQueue q(14);
  int fired = 0;
  const auto far = q.schedule_at(10000, [&] { ++fired; });
  q.schedule_at(1, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(far));
  EXPECT_FALSE(q.cancel(far));
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 1);  // never advanced to the cancelled far event
}

TEST(EventQueue, RunUntilDoesNotOvershootIntoOverflow) {
  EventQueue q(14);
  int fired = 0;
  q.schedule_at(5000, [&] { ++fired; });
  EXPECT_EQ(q.run_until(100), 0u);
  EXPECT_EQ(q.now(), 100);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 5000);
}

TEST(EventQueue, StatsTrackBucketOccupancy) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(4, [] {});
  q.schedule_at(5, [] {});
  EXPECT_EQ(q.stats().max_bucket, 7);
  EXPECT_EQ(q.stats().max_live, 8);
  q.run();
  EXPECT_EQ(q.stats().fired, 8);
}

TEST(EventQueue, ResetClearsStateAndStats) {
  EventQueue q;
  q.schedule_at(3, [] {});
  q.run();
  q.reset(200);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.stats().scheduled, 0);
  int fired = 0;
  q.schedule_at(150, [&] { ++fired; });  // inside the resized window
  q.run();
  EXPECT_EQ(fired, 1);
}

// Generation counters: an id from a fired-and-recycled slot must not
// cancel the slot's next occupant.
TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot) {
  EventQueue q;
  const auto old_id = q.schedule_at(1, [] {});
  q.run();
  int fired = 0;
  q.schedule_at(2, [&] { ++fired; });  // reuses the recycled slot
  EXPECT_FALSE(q.cancel(old_id));
  q.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace cg

// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace cg {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(5); });
  q.schedule_at(1, [&] { order.push_back(1); });
  q.schedule_at(3, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableWithinSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  Step seen = -1;
  q.schedule_at(10, [&] { q.schedule_in(5, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_EQ(seen, 15);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(2, [&] { ++fired; });
  q.schedule_at(1, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const auto id = q.schedule_at(0, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunUntilHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] { ++fired; });
  q.schedule_at(5, [&] { ++fired; });
  q.schedule_at(9, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 5);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenEmpty) {
  EventQueue q;
  q.run_until(42);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueue, RunMaxEvents) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) q.schedule_in(1, step);
  };
  q.schedule_at(0, step);
  q.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(q.now(), 99);
}

TEST(EventQueue, PendingCountsLiveOnly) {
  EventQueue q;
  const auto a = q.schedule_at(1, [] {});
  q.schedule_at(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

}  // namespace
}  // namespace cg

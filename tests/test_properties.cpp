// Cross-cutting property sweeps: for every algorithm, across sizes, LogP
// parameters and seeds, check the universal invariants of the model and
// the per-algorithm consistency guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gossip/timing.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

struct SweepCase {
  Algo algo;
  NodeId n;
  Step l_over_o;
  std::uint64_t seed;
};

class AlgoSweep : public ::testing::TestWithParam<SweepCase> {};

AlgoConfig config_for(NodeId n) {
  AlgoConfig acfg;
  // Gossip long enough to color most nodes at every size in the sweep.
  acfg.T = 6 + 2 * static_cast<Step>(std::ceil(
                       std::log2(static_cast<double>(std::max<NodeId>(n, 2)))));
  acfg.ocg_corr_sends = 2 * n;  // OCG: guarantee full coverage
  acfg.fcg_f = 1;
  return acfg;
}

TEST_P(AlgoSweep, UniversalInvariants) {
  const SweepCase c = GetParam();
  RunConfig cfg;
  cfg.n = c.n;
  cfg.logp = LogP{.l_over_o = c.l_over_o, .o_us = 1.0};
  cfg.seed = c.seed;
  cfg.record_node_detail = true;
  const AlgoConfig acfg = config_for(c.n);
  const RunMetrics m = run_once(c.algo, acfg, cfg);

  // Terminates on its own.
  EXPECT_FALSE(m.hit_max_steps);
  // Population accounting.
  EXPECT_EQ(m.n_active, c.n);
  EXPECT_LE(m.n_colored, m.n_active);
  EXPECT_LE(m.n_delivered, m.n_colored);
  // The root holds the message from step 0.
  EXPECT_EQ(m.colored_at[0], 0);

  const Step min_arrival = cfg.logp.delivery_delay() + 1;  // emit at 1
  for (NodeId i = 0; i < c.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Step col = m.colored_at[idx];
    if (i != 0 && col != kNever) {
      // Physics: nothing can arrive before the first emission lands.
      EXPECT_GE(col, min_arrival) << algo_name(c.algo) << " node " << i;
    }
    // Ordering: delivery and completion cannot precede coloring.
    if (m.delivered_at[idx] != kNever && col != kNever) {
      EXPECT_GE(m.delivered_at[idx], col);
    }
    if (m.completed_at[idx] != kNever && col != kNever) {
      EXPECT_GE(m.completed_at[idx], col);
    }
  }

  // All corrected variants must reach everyone without failures.
  if (c.algo != Algo::kGos) {
    EXPECT_TRUE(m.all_active_colored)
        << algo_name(c.algo) << " n=" << c.n << " seed=" << c.seed;
  }
  // Self-terminating algorithms: every colored node completed.
  EXPECT_NE(m.t_complete, kNever) << algo_name(c.algo);

  // Work sanity: bounded by gossip budget + generous correction budget.
  const std::int64_t bound =
      static_cast<std::int64_t>(c.n) * (acfg.T + 4 * c.n + 64);
  EXPECT_LE(m.msgs_total, bound);
  EXPECT_GE(m.msgs_total, c.n - 1);  // must at least inform everyone once
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const Algo a : {Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg,
                       Algo::kBig, Algo::kBfb, Algo::kOpt}) {
    for (const NodeId n : {2, 3, 17, 64, 129}) {
      for (const Step lo : {0, 1, 3}) {
        for (const std::uint64_t seed : {1ULL, 99ULL}) {
          cases.push_back({a, n, lo, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AlgoSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_n%d_lo%lld_s%llu",
                    algo_name(info.param.algo), info.param.n,
                    static_cast<long long>(info.param.l_over_o),
                    static_cast<unsigned long long>(info.param.seed));
      return std::string(buf);
    });

// ----------------------------------------------------- trace coherence --

TEST(TraceCoherence, EverySendHasAMatchingDeliveryOrDrop) {
  VectorTrace trace;
  RunConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::unit();
  cfg.seed = 5;
  cfg.trace = &trace;
  AlgoConfig acfg;
  acfg.T = 10;
  run_once(Algo::kCcg, acfg, cfg);

  std::map<std::pair<NodeId, Step>, int> recv_count;  // (node, step)
  int sends = 0, recvs = 0;
  for (const auto& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kSend) {
      ++sends;
    } else if (ev.kind == TraceEvent::Kind::kDeliver) {
      ++recvs;
      ++recv_count[{ev.node, ev.step}];
    }
  }
  EXPECT_GT(sends, 0);
  EXPECT_LE(recvs, sends);  // drops: receiver already completed

  // Every delivery is exactly delivery_delay after a matching send.
  for (const auto& ev : trace.events()) {
    if (ev.kind != TraceEvent::Kind::kDeliver) continue;
    bool matched = false;
    for (const auto& ev2 : trace.events()) {
      if (ev2.kind == TraceEvent::Kind::kSend && ev2.node == ev.peer &&
          ev2.peer == ev.node &&
          ev2.step + cfg.logp.delivery_delay() == ev.step) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "delivery at node " << ev.node << " t=" << ev.step;
  }
}

TEST(TraceCoherence, ColoredAtMostOncePerNode) {
  VectorTrace trace;
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 8;
  cfg.trace = &trace;
  AlgoConfig acfg;
  acfg.T = 12;
  acfg.fcg_f = 1;
  run_once(Algo::kFcg, acfg, cfg);
  std::map<NodeId, int> colored, completed;
  for (const auto& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kColored) ++colored[ev.node];
    if (ev.kind == TraceEvent::Kind::kComplete) ++completed[ev.node];
  }
  for (const auto& [node, count] : colored)
    EXPECT_EQ(count, 1) << "node " << node << " colored twice (duplicates)";
  for (const auto& [node, count] : completed)
    EXPECT_EQ(count, 1) << "node " << node << " completed twice";
}

// ------------------------------------------- loss-hardened guarantees --

// A channel hostile enough that the PLAIN correction phase measurably
// fails (a lost kFwd silently skips part of the ring), but tame enough
// that bounded retransmission restores the guarantee in every trial:
// 15% Gilbert-Elliott loss in bursts of mean 8 steps, deliberately short
// gossip (T=8 at N=128) so correction carries real weight.
TrialSpec bursty_spec(Algo algo, bool reliable) {
  TrialSpec spec;
  spec.algo = algo;
  spec.acfg.T = 8;
  spec.acfg.fcg_f = 1;
  spec.acfg.reliable.enabled = reliable;
  spec.n = 128;
  spec.logp = LogP::unit();
  spec.seed = 42;
  spec.trials = 200;
  spec.threads = 4;
  spec.burst_loss = 0.15;
  spec.burst_mean = 8;
  return spec;
}

// Claim 3 (all active nodes reached) survives burst loss ONLY with the
// ack/retransmit sublayer: 200 seeds, zero misses - and the same 200
// seeds show the plain variant measurably losing nodes, so the pass is
// not the channel being secretly gentle.
TEST(LossHardening, CcgReachesAllNodesUnderBurstLossWithRetransmission) {
  const TrialAggregate rel = run_trials(bursty_spec(Algo::kCcg, true));
  EXPECT_EQ(rel.all_colored_trials, rel.trials);
  EXPECT_EQ(rel.hit_max_steps_trials, 0);
  EXPECT_GT(rel.work_retrans.mean(), 0.0);

  const TrialAggregate plain = run_trials(bursty_spec(Algo::kCcg, false));
  EXPECT_LT(plain.all_colored_trials, plain.trials);
  EXPECT_DOUBLE_EQ(plain.work_retrans.mean(), 0.0);
}

// FCG's all-or-nothing delivery (Claim 4) under the same channel: the
// hardened variant never violates it and never needs an SOS it cannot
// finish; the plain variant demonstrably does.
TEST(LossHardening, FcgKeepsAllOrNothingUnderBurstLossWithRetransmission) {
  const TrialAggregate rel = run_trials(bursty_spec(Algo::kFcg, true));
  EXPECT_EQ(rel.all_or_nothing_violations, 0);
  EXPECT_EQ(rel.sos_incomplete_trials, 0);
  EXPECT_EQ(rel.hit_max_steps_trials, 0);

  const TrialAggregate plain = run_trials(bursty_spec(Algo::kFcg, false));
  EXPECT_GT(plain.all_or_nothing_violations + plain.sos_incomplete_trials +
                (plain.trials - plain.all_delivered_trials),
            0);
}

}  // namespace
}  // namespace cg

// Scale-ready telemetry: LogHistogram bucket math, the per-shard registry's
// cross-engine determinism (fingerprints byte-identical across the stepped /
// async / parallel / sharded engines at any shard or thread count, over a
// 100-seed fault-stack sweep), the deterministic reservoir trace sampler,
// the flight recorder's ring + dump/parse round-trip and its campaign
// integration (a forced guarantee failure produces an artifact that is the
// exact suffix of the stepped replay), the heartbeat channel, the streaming
// ChromeTraceSink, the StepSeries stride, and the zero-steady-state-alloc
// contract with telemetry attached.
//
// Carries the ctest label `sanitize`: the tsan preset exercises the
// parallel/sharded recording paths under ThreadSanitizer (the allocation
// guard compiles out there, as in test_trial_farm.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "obs/sampling_sink.hpp"
#include "obs/series.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same pattern as test_trial_farm.cpp: sanitizer
// builds own operator new themselves, so the guard compiles out there).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CG_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CG_ALLOC_COUNTING 0
#endif
#endif
#ifndef CG_ALLOC_COUNTING
#define CG_ALLOC_COUNTING 1
#endif

#if CG_ALLOC_COUNTING

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // CG_ALLOC_COUNTING

namespace cg {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- LogHistogram ----------------------------------------------------------

TEST(LogHistogram, LinearRangeIsExact) {
  for (std::int64_t v = 0; v < LogHistogram::kLinear; ++v) {
    EXPECT_EQ(LogHistogram::bucket_of(v), static_cast<int>(v));
    EXPECT_EQ(LogHistogram::bucket_lo(static_cast<int>(v)), v);
  }
}

TEST(LogHistogram, BucketBoundsAreConsistent) {
  for (int b = 0; b < LogHistogram::kBuckets - 1; ++b) {
    const std::int64_t lo = LogHistogram::bucket_lo(b);
    const std::int64_t hi = LogHistogram::bucket_hi(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    EXPECT_EQ(LogHistogram::bucket_of(lo), b);
    EXPECT_EQ(LogHistogram::bucket_of(hi - 1), b);
    if (b + 1 < LogHistogram::kBuckets - 1)
      EXPECT_EQ(LogHistogram::bucket_of(hi), b + 1);
  }
  // Negative values clamp to bucket 0; huge values hit the overflow bucket.
  EXPECT_EQ(LogHistogram::bucket_of(-5), 0);
  EXPECT_EQ(LogHistogram::bucket_of(std::int64_t{1} << 62),
            LogHistogram::kBuckets - 1);
}

TEST(LogHistogram, RelativeErrorBoundedByQuarter) {
  // Each sub-bucket spans at most 25% of its lower bound (the HDR-style
  // guarantee the latency quantiles rely on).
  for (int b = LogHistogram::kLinear; b < LogHistogram::kBuckets - 1; ++b) {
    const double lo = static_cast<double>(LogHistogram::bucket_lo(b));
    const double hi = static_cast<double>(LogHistogram::bucket_hi(b));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-9) << "bucket " << b;
  }
}

TEST(LogHistogram, MergeIsCommutativeAndOrderFree) {
  LogHistogram a, b, both;
  for (std::int64_t v : {0, 3, 31, 32, 40, 100, 5000, 1 << 20}) {
    a.record(v);
    both.record(v);
  }
  for (std::int64_t v : {7, 7, 7, 63, 64, 12345}) {
    b.record(v);
    both.record(v);
  }
  LogHistogram ab = a;
  ab.merge(b);
  LogHistogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_TRUE(ab == both);
  EXPECT_EQ(ab.count(), 14);
}

TEST(LogHistogram, QuantilesFromKnownDistribution) {
  LogHistogram h;
  for (std::int64_t v = 0; v < 100; ++v) h.record(v % 10);  // 0..9 uniform
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(1.0), 9);
  EXPECT_EQ(h.max_bound(), 9);
}

// --- Telemetry registry ----------------------------------------------------

TEST(Telemetry, InboxDepthGroupsPerNodeStep) {
  Telemetry t;
  t.attach(4, 2);
  // Node 1: 3 deliveries at step 5, then 1 at step 7.  Node 2: 2 at step 5.
  t.record_delivery(0, 1, 5);
  t.record_delivery(0, 1, 5);
  t.record_delivery(1, 1, 5);  // same node from another cell: same group
  t.record_delivery(1, 2, 5);
  t.record_delivery(1, 2, 5);
  t.record_delivery(0, 1, 7);  // flushes node 1's step-5 group (count 3)
  RunMetrics m;
  t.finish_run(m);
  const LogHistogram& h = t.merged().inbox_depth;
  EXPECT_EQ(h.count(), 3);                // groups: (1,5)=3, (2,5)=2, (1,7)=1
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(t.merged().deliveries, 6);
}

TEST(Telemetry, FingerprintSeparatesDifferentRuns) {
  Telemetry a, b;
  a.attach(8, 1);
  b.attach(8, 1);
  RunMetrics m;
  a.record_colored(0, 3);
  b.record_colored(0, 4);
  a.finish_run(m);
  b.finish_run(m);
  EXPECT_NE(a.invariant_fingerprint(), b.invariant_fingerprint());
}

TEST(Telemetry, WindowBoundaryExcludedFromFingerprint) {
  Telemetry a, b;
  a.attach(8, 2);
  b.attach(8, 2);
  RunMetrics m;
  a.record_colored(0, 3);
  b.record_colored(1, 3);              // different cell, same event
  b.record_window_boundary(0, 17);     // layout-dependent, must not leak
  a.finish_run(m);
  b.finish_run(m);
  EXPECT_EQ(a.invariant_fingerprint(), b.invariant_fingerprint());
}

// --- Cross-engine determinism sweep ---------------------------------------

// The full fault stack from the parity suite, scaled for a 100-seed sweep.
RunConfig sweep_cfg(std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = 96;
  cfg.logp = LogP::piz_daint();
  cfg.seed = seed;
  cfg.jitter_max = 1;
  cfg.drop_prob = 0.02;
  cfg.burst = BurstLoss::from_rate(0.05, 4);
  cfg.failures.online.push_back({50, 14});
  cfg.failures.restarts.push_back({21, 10, 26});
  cfg.stragglers.push_back({11, 3});
  cfg.partitions.push_back({12, 20, {33, 34, 35}});
  return cfg;
}

struct EngineRun {
  std::string fingerprint;
  std::string sample;
};

EngineRun run_with_telemetry(const RunConfig& base, const ExecConfig& exec) {
  AlgoConfig acfg;
  acfg.T = 24;
  acfg.drain_extra = 2;
  acfg.reliable.enabled = true;  // exercise the retransmit histogram
  RunConfig cfg = base;
  Telemetry tel;
  obs::SamplingTraceSink sampler(cfg.seed, 64);
  cfg.telemetry = &tel;
  cfg.trace = &sampler;
  run_once(Algo::kCcg, acfg, cfg, exec);
  return {tel.invariant_fingerprint(), obs::to_jsonl(sampler.sample())};
}

TEST(TelemetryDeterminism, HundredSeedSweepAcrossEnginesShardsThreads) {
  const ExecConfig variants[] = {
      {EngineKind::kAsync, 1},    {EngineKind::kParallel, 1},
      {EngineKind::kParallel, 8}, {EngineKind::kSharded, 1},
      {EngineKind::kSharded, 2},  {EngineKind::kSharded, 8},
  };
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const RunConfig cfg = sweep_cfg(seed);
    const EngineRun ref =
        run_with_telemetry(cfg, {EngineKind::kStepped, 1});
    EXPECT_FALSE(ref.fingerprint.empty());
    EXPECT_FALSE(ref.sample.empty());
    for (const auto& exec : variants) {
      const EngineRun got = run_with_telemetry(cfg, exec);
      ASSERT_EQ(ref.fingerprint, got.fingerprint)
          << "seed " << seed << " engine " << engine_name(exec.engine) << "/"
          << exec.threads;
      ASSERT_EQ(ref.sample, got.sample)
          << "seed " << seed << " engine " << engine_name(exec.engine) << "/"
          << exec.threads;
    }
  }
}

// --- SamplingTraceSink -----------------------------------------------------

TEST(SamplingTraceSink, OrderIndependentOverMultisets) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 500; ++i) {
    TraceEvent ev;
    ev.step = i % 37;
    ev.kind = (i % 3 == 0) ? TraceEvent::Kind::kSend
                           : TraceEvent::Kind::kDeliver;
    ev.node = static_cast<NodeId>(i % 50);
    ev.peer = static_cast<NodeId>((i * 7) % 50);
    ev.tag = (i % 2 == 0) ? Tag::kGossip : Tag::kFwd;
    events.push_back(ev);
  }
  obs::SamplingTraceSink fwd(42, 32), rev(42, 32);
  for (const auto& ev : events) fwd.on_event(ev);
  for (auto it = events.rbegin(); it != events.rend(); ++it)
    rev.on_event(*it);
  EXPECT_EQ(fwd.seen(), 500);
  EXPECT_EQ(fwd.size(), 32u);
  EXPECT_EQ(obs::to_jsonl(fwd.sample()), obs::to_jsonl(rev.sample()));

  // A different seed picks a different subset (overwhelmingly likely).
  obs::SamplingTraceSink other(43, 32);
  for (const auto& ev : events) other.on_event(ev);
  EXPECT_NE(obs::to_jsonl(fwd.sample()), obs::to_jsonl(other.sample()));
}

TEST(SamplingTraceSink, KeepsEverythingUnderCapacity) {
  obs::SamplingTraceSink s(7, 100);
  for (int i = 0; i < 60; ++i) {
    TraceEvent ev;
    ev.step = i;
    ev.kind = TraceEvent::Kind::kColored;
    ev.node = static_cast<NodeId>(i);
    s.on_event(ev);
  }
  EXPECT_EQ(s.size(), 60u);
  const auto sample = s.sample();
  ASSERT_EQ(sample.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)].step, i);
}

// --- FlightRecorder --------------------------------------------------------

std::vector<TraceEvent> synthetic_events(int count) {
  std::vector<TraceEvent> v;
  for (int i = 0; i < count; ++i) {
    TraceEvent ev;
    ev.step = i;
    ev.kind = TraceEvent::Kind::kSend;
    ev.node = static_cast<NodeId>(i % 9);
    ev.peer = static_cast<NodeId>((i + 1) % 9);
    ev.tag = Tag::kGossip;
    v.push_back(ev);
  }
  return v;
}

TEST(FlightRecorder, RingKeepsMostRecentInArrivalOrder) {
  obs::FlightRecorder fr(8);
  const auto events = synthetic_events(20);
  for (const auto& ev : events) fr.on_event(ev);
  EXPECT_EQ(fr.size(), 8u);
  EXPECT_EQ(fr.dropped(), 12);
  std::vector<TraceEvent> snap;
  fr.snapshot(snap);
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(snap[static_cast<size_t>(i)] ==
                events[static_cast<size_t>(12 + i)]);
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.dropped(), 0);
  EXPECT_EQ(fr.capacity(), 8u);
}

TEST(FlightRecorder, DumpRoundTripsThroughFromJsonl) {
  obs::FlightRecorder fr(16);
  const auto events = synthetic_events(10);
  for (const auto& ev : events) fr.on_event(ev);
  const std::string path = tmp_path("flight_dump.jsonl");
  obs::FlightRecorder::DumpInfo info;
  info.rerun = "./fault_campaign --replay=a/b/3";
  info.scenario = "iid-loss";
  info.entry = "CCG+rel";
  info.trial = 3;
  info.seed = 99;
  ASSERT_TRUE(fr.dump_jsonl(path, info));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"flight_recorder\":1"), std::string::npos);
  EXPECT_NE(header.find("\"scenario\":\"iid-loss\""), std::string::npos);
  EXPECT_NE(header.find("\"rerun\":\"./fault_campaign --replay=a/b/3\""),
            std::string::npos);
  std::vector<TraceEvent> parsed;
  std::string line;
  while (std::getline(in, line)) {
    TraceEvent ev;
    ASSERT_TRUE(obs::from_jsonl(line, ev)) << line;
    parsed.push_back(ev);
  }
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_TRUE(parsed[i] == events[i]);
}

// --- Campaign forensics ----------------------------------------------------

// A cell designed to violate its guarantee: plain CCG claims all-reached
// under heavy i.i.d. loss, which it cannot hold without the sublayer.
TEST(CampaignForensics, ForcedFailureDumpsReplayableArtifact) {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::piz_daint();
  cfg.seed = 5;
  cfg.trials = 8;
  cfg.threads = 2;
  cfg.artifacts_dir = tmp_path("artifacts");
  cfg.rerun_prefix = "./fault_campaign --n=64 --seed=5 --trials=8";
  std::error_code ignored;
  std::filesystem::create_directories(cfg.artifacts_dir, ignored);

  // Blackhole links (run_config.hpp allows drop_prob = 1.0): nothing ever
  // arrives, so every trial both fails all-reached and truncates - a
  // deterministic forced failure.  (Finite loss rates are NOT reliable
  // here: CCG's checked ring sweep retries until acknowledged, so it
  // eventually colors everyone under any loss bursts end.)
  FaultScenario sc;
  sc.name = "heavy-loss";
  sc.drop_prob = 1.0;
  CampaignEntry entry;
  entry.label = "CCG";
  entry.algo = Algo::kCcg;
  entry.acfg.T = 20;
  entry.guarantee = Guarantee::kAllReached;

  const CampaignResult result = run_campaign(cfg, {sc}, {entry});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].pass);
  ASSERT_FALSE(result.artifacts.empty());
  EXPECT_LE(static_cast<int>(result.artifacts.size()),
            cfg.max_artifacts_per_cell);

  for (const auto& art : result.artifacts) {
    // Parse the artifact back.
    std::ifstream in(art.path);
    ASSERT_TRUE(in.good()) << art.path;
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("\"flight_recorder\":1"), std::string::npos);
    EXPECT_NE(header.find("--replay=heavy-loss/CCG/"), std::string::npos);
    std::vector<TraceEvent> recorded;
    std::string line;
    while (std::getline(in, line)) {
      TraceEvent ev;
      ASSERT_TRUE(obs::from_jsonl(line, ev)) << line;
      recorded.push_back(ev);
    }
    ASSERT_FALSE(recorded.empty());

    // Replay the exact trial on the stepped engine: the ring must be the
    // exact suffix of the full trace (stepped emission order IS arrival
    // order, and the campaign carries its trials on the stepped engine).
    const TrialSpec spec = campaign_trial_spec(cfg, sc, entry);
    RunConfig rcfg = trial_run_config(spec, art.trial);
    EXPECT_EQ(rcfg.seed, art.seed);
    VectorTrace full;
    rcfg.trace = &full;
    const RunMetrics m = run_once(spec.algo, spec.acfg, rcfg);
    EXPECT_TRUE(trial_violates(result.cells[0].guarantee, m));
    ASSERT_GE(full.events().size(), recorded.size());
    const std::size_t off = full.events().size() - recorded.size();
    for (std::size_t i = 0; i < recorded.size(); ++i)
      ASSERT_TRUE(recorded[i] == full.events()[off + i])
          << art.path << " event " << i;
  }

  // The campaign result itself is unchanged by forensics instrumentation.
  CampaignConfig plain = cfg;
  plain.artifacts_dir.clear();
  const CampaignResult bare = run_campaign(plain, {sc}, {entry});
  EXPECT_TRUE(bare.artifacts.empty());
  EXPECT_EQ(obs::to_json(bare.cells[0].agg), obs::to_json(result.cells[0].agg));
}

TEST(CampaignForensics, TrialViolatesMatchesPredicates) {
  RunMetrics m;
  m.hit_max_steps = true;
  EXPECT_TRUE(trial_violates(Guarantee::kNone, m));  // truncation always dumps
  m.hit_max_steps = false;
  EXPECT_FALSE(trial_violates(Guarantee::kNone, m));
  m.all_active_colored = false;
  EXPECT_TRUE(trial_violates(Guarantee::kAllReached, m));
  m.all_active_colored = true;
  EXPECT_FALSE(trial_violates(Guarantee::kAllReached, m));
}

// --- Heartbeat -------------------------------------------------------------

TEST(Heartbeat, RateLimitsAndForcesFinalLine) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    Heartbeat hb(f, 3600.0, "test");
    for (int i = 0; i < 100; ++i) hb.beat(i + 1, 100, 0);
    EXPECT_EQ(hb.emitted(), 1);  // first beat emits, the rest are gated
    hb.force(100, 100, 2);
    EXPECT_EQ(hb.emitted(), 2);
  }
  std::rewind(f);
  char buf[512];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  const std::string line(buf);
  EXPECT_NE(line.find("\"heartbeat\":\"test\""), std::string::npos);
  EXPECT_NE(line.find("\"done\":1"), std::string::npos);
  EXPECT_NE(line.find("\"rss_mb\":"), std::string::npos);
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_NE(std::string(buf).find("\"failures\":2"), std::string::npos);
  std::fclose(f);
}

TEST(Heartbeat, EngineAndFarmChannelsEmit) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  Heartbeat hb(f, 0.0, "engine");  // interval 0: every beat emits
  RunConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::piz_daint();
  cfg.seed = 3;
  cfg.heartbeat = &hb;
  AlgoConfig acfg;
  acfg.T = 10;
  run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
  EXPECT_GT(hb.emitted(), 0);

  const std::int64_t engine_beats = hb.emitted();
  TrialSpec spec;
  spec.algo = Algo::kCcg;
  spec.acfg = acfg;
  spec.n = 32;
  spec.logp = LogP::piz_daint();
  spec.seed = 3;
  spec.trials = 4;
  spec.threads = 2;
  spec.heartbeat = &hb;
  run_trials(spec);
  EXPECT_GE(hb.emitted(), engine_beats + 4);
  std::fclose(f);
}

// --- Streaming ChromeTraceSink --------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ChromeTraceSink, StreamsInChunksAndStaysWellFormed) {
  const std::string path = tmp_path("stream_trace.json");
  {
    obs::ChromeTraceSink sink(path, 1.0, /*flush_threshold=*/4);
    for (const auto& ev : synthetic_events(11)) sink.on_event(ev);
    EXPECT_TRUE(sink.close());
    EXPECT_EQ(sink.emitted(), 11);
    EXPECT_EQ(sink.dropped(), 0);
  }
  const std::string json = read_file(path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_EQ(json.find(",,"), std::string::npos);
  EXPECT_EQ(json.find("[,"), std::string::npos);
}

TEST(ChromeTraceSink, HardCapWritesTruncationMarker) {
  const std::string path = tmp_path("capped_trace.json");
  {
    obs::ChromeTraceSink sink(path, 1.0, /*flush_threshold=*/4,
                              /*max_events=*/3);
    for (const auto& ev : synthetic_events(10)) sink.on_event(ev);
    EXPECT_TRUE(sink.close());
    EXPECT_EQ(sink.emitted(), 3);
    EXPECT_EQ(sink.dropped(), 7);
  }
  const std::string json = read_file(path);
  EXPECT_NE(json.find("trace_truncated"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":7"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
}

TEST(ChromeTraceSink, EmptyRunStillProducesValidFile) {
  const std::string path = tmp_path("empty_trace.json");
  {
    obs::ChromeTraceSink sink(path);
    EXPECT_TRUE(sink.close());
  }
  const std::string json = read_file(path);
  EXPECT_NE(json.find("\"traceEvents\":[]}"), std::string::npos);
}

// --- StepSeries stride ------------------------------------------------------

TEST(StepSeries, StrideFoldsBucketsAndPreservesTotals) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::piz_daint();
  cfg.seed = 11;
  AlgoConfig acfg;
  acfg.T = 16;

  obs::StepSeries fine;
  {
    RunConfig c = cfg;
    c.trace = &fine;
    run_once(Algo::kCcg, acfg, c, {EngineKind::kStepped, 1});
  }
  obs::StepSeries coarse;
  coarse.set_stride(4);
  coarse.set_track_ring(false);
  {
    RunConfig c = cfg;
    c.trace = &coarse;
    run_once(Algo::kCcg, acfg, c, {EngineKind::kStepped, 1});
  }
  ASSERT_GT(fine.steps(), 0);
  EXPECT_EQ(coarse.steps(), (fine.steps() + 3) / 4);
  // Totals are invariant under decimation.
  const auto sum = [](const std::vector<std::int64_t>& v) {
    std::int64_t s = 0;
    for (const auto x : v) s += x;
    return s;
  };
  EXPECT_EQ(sum(fine.sends_total()), sum(coarse.sends_total()));
  EXPECT_EQ(sum(fine.newly_colored()), sum(coarse.newly_colored()));
  EXPECT_EQ(fine.colored_cumulative().back(),
            coarse.colored_cumulative().back());
  // Ring tracking disabled: series reads all zeros.
  for (const auto x : coarse.ring_watermark()) EXPECT_EQ(x, 0);
  // CSV step column advances by the stride.
  const std::string csv = coarse.to_csv();
  EXPECT_EQ(csv.find("\n0,"), csv.find('\n'));
  EXPECT_NE(csv.find("\n4,"), std::string::npos);
}

// --- Zero steady-state allocations with telemetry attached ------------------

#if CG_ALLOC_COUNTING

TEST(TelemetryAlloc, SteadyStateTrialsAllocateNothing) {
  Telemetry tel;
  EngineCache cache;
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP::piz_daint();
  cfg.telemetry = &tel;
  AlgoConfig acfg;
  acfg.T = 14;
  // Warm pass: slabs and telemetry arrays reach their high-water
  // capacities for these exact runs; the steady pass replays the same
  // seeds and must reuse every buffer (the test_trial_farm idiom).
  for (int t = 0; t < 5; ++t) {
    cfg.seed = static_cast<std::uint64_t>(t + 1);
    cache.run_once(Algo::kCcg, acfg, cfg);
  }
  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int t = 0; t < 5; ++t) {
    cfg.seed = static_cast<std::uint64_t>(t + 1);
    cache.run_once(Algo::kCcg, acfg, cfg);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_EQ(tel.runs(), 10);
}

#endif  // CG_ALLOC_COUNTING

}  // namespace
}  // namespace cg

// Cross-engine parity: the stepped, event-driven, parallel and window-
// sharded engines all execute on the shared simulation core
// (src/sim/core/) and must produce
// IDENTICAL metrics for the same RunConfig - including with per-message
// jitter, message loss, pre-run and online failures, and both receive
// policies - for every corrected-gossip protocol.
//
// These tests carry the ctest label `sanitize`, so the tsan preset runs
// the multi-threaded executions under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "harness/runner.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

// t_end is deliberately excluded: the engines agree on every event's step,
// but report the quiescence point itself off-by-scheduling (the stepped
// loop runs one trailing empty step).
void expect_same(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.n_total, b.n_total);
  EXPECT_EQ(a.n_active, b.n_active);
  EXPECT_EQ(a.n_colored, b.n_colored);
  EXPECT_EQ(a.n_delivered, b.n_delivered);
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.msgs_gossip, b.msgs_gossip);
  EXPECT_EQ(a.msgs_correction, b.msgs_correction);
  EXPECT_EQ(a.msgs_sos, b.msgs_sos);
  EXPECT_EQ(a.msgs_tree, b.msgs_tree);
  EXPECT_EQ(a.msgs_retrans, b.msgs_retrans);
  EXPECT_EQ(a.msgs_dropped, b.msgs_dropped);
  EXPECT_EQ(a.t_last_colored, b.t_last_colored);
  EXPECT_EQ(a.t_last_colored_partial, b.t_last_colored_partial);
  EXPECT_EQ(a.t_last_delivered, b.t_last_delivered);
  EXPECT_EQ(a.t_complete, b.t_complete);
  EXPECT_EQ(a.t_root_complete, b.t_root_complete);
  EXPECT_EQ(a.all_active_colored, b.all_active_colored);
  EXPECT_EQ(a.all_active_delivered, b.all_active_delivered);
  EXPECT_EQ(a.sos_triggered, b.sos_triggered);
  EXPECT_EQ(a.hit_max_steps, b.hit_max_steps);
}

// An adversarial-but-realistic system: jitter reorders messages, 2% of
// them vanish, one node is dead from the start and two crash mid-run.
RunConfig harsh_cfg(std::uint64_t seed, RxPolicy rx) {
  RunConfig cfg;
  cfg.n = 150;
  cfg.logp = LogP::piz_daint();
  cfg.seed = seed;
  cfg.rx = rx;
  cfg.jitter_max = 2;
  cfg.drop_prob = 0.02;
  cfg.failures.pre_failed = {5};
  cfg.failures.online.push_back({20, 9});
  cfg.failures.online.push_back({71, 15});
  return cfg;
}

// Every fault model from src/sim/fault/ at once: Gilbert-Elliott burst
// loss, a crash-restart, stragglers and a transient partition, stacked on
// jitter and i.i.d. loss.  The burst chains consume a dedicated per-sender
// RNG stream advanced per STEP, so engine scheduling must not perturb it.
RunConfig faulty_cfg(std::uint64_t seed, RxPolicy rx) {
  RunConfig cfg;
  cfg.n = 120;
  cfg.logp = LogP::piz_daint();
  cfg.seed = seed;
  cfg.rx = rx;
  cfg.jitter_max = 1;
  cfg.drop_prob = 0.01;
  cfg.burst = BurstLoss::from_rate(0.05, 4);
  cfg.failures.online.push_back({60, 14});
  cfg.failures.restarts.push_back({25, 10, 26});
  cfg.stragglers.push_back({11, 3});
  cfg.stragglers.push_back({40, 2});
  cfg.partitions.push_back({12, 20, {33, 34, 35, 36}});
  return cfg;
}

AlgoConfig algo_cfg(Algo algo) {
  AlgoConfig acfg;
  acfg.T = 30;
  acfg.drain_extra = 2;
  if (algo == Algo::kOcg) acfg.ocg_corr_sends = 12;
  if (algo == Algo::kFcg) acfg.fcg_f = 2;
  return acfg;
}

class EnginesAgree
    : public ::testing::TestWithParam<
          std::tuple<Algo, std::uint64_t, RxPolicy>> {};

TEST_P(EnginesAgree, OnHarshNetwork) {
  const auto [algo, seed, rx] = GetParam();
  const RunConfig cfg = harsh_cfg(seed, rx);
  const AlgoConfig acfg = algo_cfg(algo);

  const RunMetrics serial =
      run_once(algo, acfg, cfg, {EngineKind::kStepped, 1});
  const RunMetrics async = run_once(algo, acfg, cfg, {EngineKind::kAsync, 1});
  const RunMetrics par2 =
      run_once(algo, acfg, cfg, {EngineKind::kParallel, 2});
  const RunMetrics par5 =
      run_once(algo, acfg, cfg, {EngineKind::kParallel, 5});
  const RunMetrics sh2 = run_once(algo, acfg, cfg, {EngineKind::kSharded, 2});

  SCOPED_TRACE(algo_name(algo));
  expect_same(serial, async);
  expect_same(serial, par2);
  expect_same(serial, par5);
  expect_same(serial, sh2);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EnginesAgree,
    ::testing::Combine(
        ::testing::Values(Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg),
        ::testing::Values<std::uint64_t>(1, 7, 13),
        ::testing::Values(RxPolicy::kDrainAll, RxPolicy::kOnePerStep)));

// The same parity statement over the full fault stack - burst loss,
// crash-restart, stragglers, partition - with and without the
// ack/retransmit sublayer.  This is the determinism contract for the
// fault RNG streams: a fault outcome is a pure function of (config, seed),
// never of engine scheduling.
class EnginesAgreeOnFaults
    : public ::testing::TestWithParam<
          std::tuple<Algo, std::uint64_t, RxPolicy, bool>> {};

TEST_P(EnginesAgreeOnFaults, FullFaultStack) {
  const auto [algo, seed, rx, reliable] = GetParam();
  const RunConfig cfg = faulty_cfg(seed, rx);
  AlgoConfig acfg = algo_cfg(algo);
  acfg.reliable.enabled = reliable;

  const RunMetrics serial =
      run_once(algo, acfg, cfg, {EngineKind::kStepped, 1});
  const RunMetrics async = run_once(algo, acfg, cfg, {EngineKind::kAsync, 1});
  const RunMetrics par3 =
      run_once(algo, acfg, cfg, {EngineKind::kParallel, 3});
  const RunMetrics sh4 = run_once(algo, acfg, cfg, {EngineKind::kSharded, 4});

  SCOPED_TRACE(algo_name(algo));
  expect_same(serial, async);
  expect_same(serial, par3);
  expect_same(serial, sh4);
  if (reliable) {
    EXPECT_GT(serial.msgs_retrans, 0);  // bursts force retries
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EnginesAgreeOnFaults,
    ::testing::Combine(::testing::Values(Algo::kCcg, Algo::kFcg),
                       ::testing::Values<std::uint64_t>(3, 29),
                       ::testing::Values(RxPolicy::kDrainAll,
                                         RxPolicy::kOnePerStep),
                       ::testing::Bool()));

// Acceptance check for the fault layer: the canonically sorted JSONL trace
// of a run under every fault model at once - including kLost and kRestart
// events - is BYTE-IDENTICAL across all three engines.
TEST(EngineParity, FaultTraceJsonlIsByteIdenticalAcrossEngines) {
  AlgoConfig acfg = algo_cfg(Algo::kCcg);
  acfg.reliable.enabled = true;
  const RunConfig base = faulty_cfg(19, RxPolicy::kOnePerStep);

  auto canonical_jsonl = [&](EngineKind kind, int threads) {
    VectorTrace trace;
    RunConfig cfg = base;
    cfg.trace = &trace;
    run_once(Algo::kCcg, acfg, cfg, {kind, threads});
    std::vector<TraceEvent> events = trace.events();
    obs::canonical_sort(events);
    return obs::to_jsonl(events);
  };

  const std::string serial = canonical_jsonl(EngineKind::kStepped, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"lost\""), std::string::npos);
  EXPECT_NE(serial.find("\"restart\""), std::string::npos);
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kAsync, 1));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 2));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 5));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 1));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 3));
}

// Node-level agreement: with record_node_detail every per-node coloring /
// delivery / completion step must match bit-for-bit across engines.
TEST(EngineParity, NodeDetailMatchesAcrossEngines) {
  RunConfig cfg = harsh_cfg(3, RxPolicy::kOnePerStep);
  cfg.record_node_detail = true;
  const AlgoConfig acfg = algo_cfg(Algo::kFcg);
  const RunMetrics serial =
      run_once(Algo::kFcg, acfg, cfg, {EngineKind::kStepped, 1});
  const RunMetrics async =
      run_once(Algo::kFcg, acfg, cfg, {EngineKind::kAsync, 1});
  const RunMetrics par =
      run_once(Algo::kFcg, acfg, cfg, {EngineKind::kParallel, 3});
  const RunMetrics sh =
      run_once(Algo::kFcg, acfg, cfg, {EngineKind::kSharded, 2});
  EXPECT_EQ(serial.colored_at, async.colored_at);
  EXPECT_EQ(serial.colored_at, par.colored_at);
  EXPECT_EQ(serial.colored_at, sh.colored_at);
  EXPECT_EQ(serial.delivered_at, async.delivered_at);
  EXPECT_EQ(serial.delivered_at, par.delivered_at);
  EXPECT_EQ(serial.delivered_at, sh.delivered_at);
  EXPECT_EQ(serial.completed_at, async.completed_at);
  EXPECT_EQ(serial.completed_at, par.completed_at);
  EXPECT_EQ(serial.completed_at, sh.completed_at);
}

using EvKey = std::tuple<Step, int, NodeId, NodeId, int>;

std::vector<EvKey> sorted_keys(const VectorTrace& t) {
  std::vector<EvKey> keys;
  keys.reserve(t.events().size());
  for (const auto& ev : t.events())
    keys.emplace_back(ev.step, static_cast<int>(ev.kind), ev.node, ev.peer,
                      static_cast<int>(ev.tag));
  std::sort(keys.begin(), keys.end());
  return keys;
}

// The parallel engine merges per-worker trace buffers at the step barrier;
// within a step the worker interleaving is engine-specific, so compare the
// event MULTISET, which must match the serial trace exactly.
TEST(EngineParity, ParallelTraceMatchesSerialMultiset) {
  const AlgoConfig acfg = algo_cfg(Algo::kCcg);
  VectorTrace serial_trace, par_trace;
  RunConfig cfg = harsh_cfg(11, RxPolicy::kDrainAll);
  cfg.trace = &serial_trace;
  run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
  cfg.trace = &par_trace;
  run_once(Algo::kCcg, acfg, cfg, {EngineKind::kParallel, 4});
  EXPECT_FALSE(serial_trace.events().empty());
  EXPECT_EQ(sorted_keys(serial_trace), sorted_keys(par_trace));
}

// The event-driven engine also traces; same multiset as the serial engine.
TEST(EngineParity, AsyncTraceMatchesSerialMultiset) {
  const AlgoConfig acfg = algo_cfg(Algo::kOcg);
  VectorTrace serial_trace, async_trace;
  RunConfig cfg = harsh_cfg(2, RxPolicy::kDrainAll);
  cfg.trace = &serial_trace;
  run_once(Algo::kOcg, acfg, cfg, {EngineKind::kStepped, 1});
  cfg.trace = &async_trace;
  run_once(Algo::kOcg, acfg, cfg, {EngineKind::kAsync, 1});
  EXPECT_FALSE(serial_trace.events().empty());
  EXPECT_EQ(sorted_keys(serial_trace), sorted_keys(async_trace));
}

// Strongest trace-parity statement: after canonical sorting, the JSONL
// serialization of a kOnePerStep run is BYTE-IDENTICAL across all three
// engines.  (Raw emission order differs - worker interleaving, heap order -
// which is exactly what obs::canonical_sort exists to factor out.)
TEST(EngineParity, CanonicalJsonlIsByteIdenticalAcrossEngines) {
  const AlgoConfig acfg = algo_cfg(Algo::kFcg);
  const RunConfig base = harsh_cfg(17, RxPolicy::kOnePerStep);

  auto canonical_jsonl = [&](EngineKind kind, int threads) {
    VectorTrace trace;
    RunConfig cfg = base;
    cfg.trace = &trace;
    run_once(Algo::kFcg, acfg, cfg, {kind, threads});
    std::vector<TraceEvent> events = trace.events();
    obs::canonical_sort(events);
    return obs::to_jsonl(events);
  };

  const std::string serial = canonical_jsonl(EngineKind::kStepped, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kAsync, 1));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 2));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 5));
  EXPECT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 2));
}

// The engines' self-profiles must agree on the callback counts (they run
// the same simulation), even though the wall-clock split is engine-specific.
TEST(EngineParity, ProfileCallbackCountsMatchAcrossEngines) {
  const AlgoConfig acfg = algo_cfg(Algo::kCcg);
  const RunConfig base = harsh_cfg(23, RxPolicy::kDrainAll);

  auto profiled = [&](EngineKind kind, int threads) {
    EngineProfile prof;
    RunConfig cfg = base;
    cfg.profile = &prof;
    run_once(Algo::kCcg, acfg, cfg, {kind, threads});
    return prof;
  };

  const EngineProfile serial = profiled(EngineKind::kStepped, 1);
  const EngineProfile async = profiled(EngineKind::kAsync, 1);
  const EngineProfile par = profiled(EngineKind::kParallel, 3);
  const EngineProfile sh = profiled(EngineKind::kSharded, 3);
  EXPECT_GT(serial.callbacks_receive, 0);
  EXPECT_GT(serial.callbacks_tick, 0);
  EXPECT_EQ(serial.callbacks_start, async.callbacks_start);
  EXPECT_EQ(serial.callbacks_receive, async.callbacks_receive);
  EXPECT_EQ(serial.callbacks_tick, async.callbacks_tick);
  EXPECT_EQ(serial.callbacks_start, par.callbacks_start);
  EXPECT_EQ(serial.callbacks_receive, par.callbacks_receive);
  EXPECT_EQ(serial.callbacks_tick, par.callbacks_tick);
  EXPECT_EQ(serial.callbacks_start, sh.callbacks_start);
  EXPECT_EQ(serial.callbacks_receive, sh.callbacks_receive);
  EXPECT_EQ(serial.callbacks_tick, sh.callbacks_tick);

  // Memory-plan accounting: every engine reports a positive per-node
  // footprint and the process peak RSS.
  for (const EngineProfile* p : {&serial, &async, &par, &sh}) {
    EXPECT_GT(p->bytes_per_node, 0);
    EXPECT_GT(p->peak_rss_bytes, 0);
  }
  // Sharded-only substrate counters.
  EXPECT_EQ(sh.shards, 3);
  EXPECT_GT(sh.windows, 0);
  EXPECT_EQ(static_cast<int>(sh.shard_stats.size()), 3);
  EXPECT_GT(sh.boundary_msgs, 0);  // 3 shards on 150 nodes must cross

  // Queue instrumentation.  The stepped engines count delivery-calendar
  // traffic (one event per undropped message), so serial and parallel must
  // agree exactly, every staged message must drain, and nothing cancels.
  EXPECT_GT(serial.events_scheduled, 0);
  EXPECT_EQ(serial.events_fired, serial.events_scheduled);
  EXPECT_EQ(serial.events_cancelled, 0);
  EXPECT_EQ(par.events_scheduled, serial.events_scheduled);
  EXPECT_EQ(par.events_fired, serial.events_fired);
  EXPECT_EQ(par.events_cancelled, 0);
  EXPECT_GE(serial.queue_max_bucket, 1);
  EXPECT_GE(par.queue_max_bucket, 1);

  // The async engine counts kernel operations (ticks, delivery sweeps, rx
  // pops, crash events) - a different unit, but the run drained the queue,
  // so the operation ledger must balance, and the slot pool must have hit a
  // recycling plateau far below the total operation count (the zero-
  // allocation steady-state contract: live slots stay O(n), never O(events)).
  EXPECT_GT(async.events_scheduled, 0);
  EXPECT_EQ(async.events_fired + async.events_cancelled,
            async.events_scheduled);
  EXPECT_GE(async.queue_max_bucket, 1);
  EXPECT_GT(async.queue_slot_capacity, 0);
  EXPECT_LT(async.queue_slot_capacity, async.events_scheduled);
  EXPECT_LE(async.queue_slot_capacity, 8 * base.n + 64);
}

// ~100-seed randomized property test: a fresh fault stack per seed (jitter,
// i.i.d. + burst loss, pre/online failures, crash-restarts, stragglers,
// partitions, reliable sublayer, both rx policies, all four protocols), with
// the canonically sorted JSONL trace required to be BYTE-IDENTICAL between
// the stepped and event-driven engines (and the parallel engine on every
// 10th seed).  This is the adversarial sweep for the event-kernel rewrite:
// any batching or calendar-ordering slip shows up as a trace diff.
TEST(EngineParity, RandomizedFaultStacksTraceByteParity) {
  constexpr int kSeeds = 100;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    std::mt19937_64 gen(0x9E3779B97F4A7C15ull * static_cast<unsigned>(seed));
    auto pick = [&](int lo, int hi) {  // inclusive
      return lo + static_cast<int>(gen() % static_cast<unsigned>(hi - lo + 1));
    };

    RunConfig cfg;
    cfg.n = pick(48, 128);
    cfg.logp = (pick(0, 1) != 0) ? LogP::piz_daint() : LogP::unit();
    cfg.seed = static_cast<std::uint64_t>(seed) * 7919u;
    cfg.rx = (pick(0, 1) != 0) ? RxPolicy::kOnePerStep : RxPolicy::kDrainAll;
    cfg.jitter_max = pick(0, 2);
    cfg.drop_prob = 0.01 * pick(0, 3);
    if (pick(0, 1) != 0)
      cfg.burst = BurstLoss::from_rate(0.01 * pick(2, 6), pick(2, 5));
    // config_error() rejects a node failing twice (and duplicate straggler /
    // partition listings), so draw distinct nodes per constraint set.
    auto fresh_node = [&](std::set<NodeId>& used) {
      for (;;) {
        const auto i = static_cast<NodeId>(pick(1, cfg.n - 1));
        if (used.insert(i).second) return i;
      }
    };
    std::set<NodeId> failed, straggling, partitioned;
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.pre_failed.push_back(fresh_node(failed));
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.online.push_back(
          {fresh_node(failed), static_cast<Step>(pick(3, 60))});
    if (pick(0, 1) != 0) {
      const Step down = static_cast<Step>(pick(5, 40));
      cfg.failures.restarts.push_back(
          {fresh_node(failed), down, down + static_cast<Step>(pick(1, 10))});
    }
    for (int k = pick(0, 2); k > 0; --k)
      cfg.stragglers.push_back(
          {fresh_node(straggling), static_cast<Step>(pick(2, 4))});
    if (pick(0, 1) != 0) {
      PartitionWindow pw;
      pw.from = static_cast<Step>(pick(2, 20));
      pw.until = pw.from + static_cast<Step>(pick(2, 15));
      for (int k = pick(1, 4); k > 0; --k)
        pw.members.push_back(fresh_node(partitioned));
      cfg.partitions.push_back(pw);
    }

    const Algo algo =
        std::array{Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg}[
            static_cast<std::size_t>(pick(0, 3))];
    AlgoConfig acfg = algo_cfg(algo);
    acfg.reliable.enabled = pick(0, 1) != 0;

    auto canonical_jsonl = [&](EngineKind kind, int threads) {
      VectorTrace trace;
      RunConfig tcfg = cfg;
      tcfg.trace = &trace;
      run_once(algo, acfg, tcfg, {kind, threads});
      std::vector<TraceEvent> events = trace.events();
      obs::canonical_sort(events);
      return obs::to_jsonl(events);
    };

    SCOPED_TRACE("seed=" + std::to_string(seed) + " algo=" +
                 std::string(algo_name(algo)) + " n=" + std::to_string(cfg.n));
    const std::string serial = canonical_jsonl(EngineKind::kStepped, 1);
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial, canonical_jsonl(EngineKind::kAsync, 1));
    if (seed % 10 == 0) {
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 3));
    }
    if (seed % 5 == 0) {
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 2));
    }
  }
}

// Acceptance spot-checks for the capabilities this PR unlocks.

TEST(EngineParity, ParallelEngineSupportsDropProb) {
  RunConfig cfg;
  cfg.n = 96;
  cfg.logp = LogP::unit();
  cfg.seed = 5;
  cfg.drop_prob = 0.15;
  const AlgoConfig acfg = algo_cfg(Algo::kCcg);
  const RunMetrics serial =
      run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
  const RunMetrics par =
      run_once(Algo::kCcg, acfg, cfg, {EngineKind::kParallel, 3});
  expect_same(serial, par);
  EXPECT_TRUE(serial.all_active_colored);  // CCG corrects through 15% loss
}

TEST(EngineParity, AsyncEngineSupportsOnePerStep) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 9;
  cfg.rx = RxPolicy::kOnePerStep;
  const AlgoConfig acfg = algo_cfg(Algo::kGos);
  const RunMetrics serial =
      run_once(Algo::kGos, acfg, cfg, {EngineKind::kStepped, 1});
  const RunMetrics async =
      run_once(Algo::kGos, acfg, cfg, {EngineKind::kAsync, 1});
  expect_same(serial, async);
}

}  // namespace
}  // namespace cg

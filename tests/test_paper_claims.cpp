// One test per formal statement of the paper, at bench-feasible scale:
// Lemma 1 (Eq. 1), Claim 2 (OCG eps-coverage), Claim 3 (CCG strong
// consistency), Observation 1 / Claim 4 (FCG all-or-nothing), Claim 5
// (f^2+f+1 without SOS), Corollary 3 (failures before/during gossip), the
// Eq. 3/4/5 optima, and Table 7's headline orderings.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/baseline_models.hpp"
#include "analysis/coloring.hpp"
#include "analysis/fcg_bound.hpp"
#include "analysis/tuning.hpp"
#include "gossip/fcg.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"

namespace cg {
namespace {

TEST(PaperLemma1, ColoringRecurrenceMatchesSimulationWithin1Percent) {
  // c(t) from Eq. (1) vs the mean over simulated gossip runs, multiple
  // probe times, N = 512.
  const NodeId n = 512;
  const Step T = 40;
  const int trials = 120;
  std::vector<std::vector<Step>> runs;
  for (int k = 0; k < trials; ++k) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::unit();
    cfg.seed = 7000 + static_cast<std::uint64_t>(k);
    cfg.record_node_detail = true;
    AlgoConfig acfg;
    acfg.T = T;
    runs.push_back(run_once(Algo::kGos, acfg, cfg).colored_at);
  }
  const auto c = expected_colored(n, n, T, LogP::unit(), 30);
  for (const Step t : {8, 12, 16, 20, 24, 28}) {
    double mean = 0;
    for (const auto& run : runs) {
      int count = 0;
      for (const Step ct : run) {
        if (ct != kNever && ct <= t) ++count;
      }
      mean += count;
    }
    mean /= trials;
    const double pred = c[static_cast<std::size_t>(t)];
    EXPECT_NEAR(mean, pred, std::max(1.5, 0.05 * pred)) << "t=" << t;
  }
}

TEST(PaperClaim2, OcgMissRateBoundedByEps) {
  // "By selecting large enough values of T and C, we can reduce the
  // probability that the correction phase fails ... below any desired
  // eps."  At eps = 0.02 and 1200 trials the observed miss rate must stay
  // within sampling error of eps.
  const NodeId n = 512;
  const double eps = 0.02;
  const Tuning t = tune_ocg(n, n, LogP::unit(), eps);
  TrialSpec spec;
  spec.algo = Algo::kOcg;
  spec.acfg.T = t.T_opt + 1;
  spec.acfg.ocg_corr_sends = k_bar_for(n, n, spec.acfg.T, LogP::unit(), eps) + 1;
  spec.n = n;
  spec.logp = LogP::unit();
  spec.seed = 31337;
  spec.trials = 1200;
  const TrialAggregate agg = run_trials(spec);
  const double miss = 1.0 - agg.all_colored_rate();
  // 3x slack over eps covers both model approximation and sampling noise.
  EXPECT_LT(miss, 3 * eps);
}

TEST(PaperClaim3, CcgStronglyConsistentWithoutOnlineFailures) {
  // Sweep seeds and pre-failure counts: every ACTIVE node is reached and
  // the algorithm completes, always.
  for (const int pre : {0, 5, 37}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Xoshiro256 frng(seed * 17);
      RunConfig cfg;
      cfg.n = 192;
      cfg.logp = LogP::unit();
      cfg.seed = seed;
      cfg.failures = FailureSchedule::random(cfg.n, pre, 0, 0, frng);
      AlgoConfig acfg;
      acfg.T = 12;
      const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
      ASSERT_TRUE(m.all_active_colored) << "pre=" << pre << " seed=" << seed;
      ASSERT_NE(m.t_complete, kNever);
    }
  }
}

TEST(PaperClaim4, FcgAllOrNothingUnderUpToFOnlineFailures) {
  // The core FCG guarantee, stressed with failures at every phase of the
  // run (gossip, drain, early/late correction).
  const NodeId n = 160;
  for (const int f : {1, 2}) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Xoshiro256 frng(seed * 23 + static_cast<std::uint64_t>(f));
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = LogP::unit();
      cfg.seed = seed;
      cfg.failures =
          FailureSchedule::random(n, 0, f, /*horizon=*/50, frng);
      AlgoConfig acfg;
      acfg.T = 13;
      acfg.fcg_f = f;
      const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
      ASSERT_TRUE(m.all_or_nothing_delivery())
          << "f=" << f << " seed=" << seed;
      ASSERT_FALSE(m.hit_max_steps);
    }
  }
}

TEST(PaperCorollary3, FcgWithstandsAnyFailuresBeforeOrDuringGossip) {
  // "FCG can withstand any number of failures happening before the
  // algorithm or during the gossip phase" - kill far more than f nodes,
  // but only at gossip time.
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP::unit();
  cfg.seed = 77;
  Xoshiro256 frng(99);
  cfg.failures = FailureSchedule::random(cfg.n, 20, 0, 0, frng);
  const auto& pre = cfg.failures.pre_failed;
  int added = 0;  // 10 crashes inside the gossip phase (a node fails once,
                  // so skip victims the random pre-failed set already took)
  for (NodeId v = 100; added < 10; ++v) {
    if (std::find(pre.begin(), pre.end(), v) != pre.end()) continue;
    cfg.failures.online.push_back({v, static_cast<Step>(2 + added)});
    ++added;
  }
  AlgoConfig acfg;
  acfg.T = 13;  // gossip ends at 13; all online failures are before that
  acfg.fcg_f = 1;
  const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_TRUE(m.all_or_nothing_delivery());
}

TEST(PaperClaim5, FSquaredPlusFPlusOneGNodesCompleteWithoutSos) {
  // With SOS disabled and exactly f^2+f+1 evenly spaced g-nodes, FCG
  // completes (worst-case placement per the claim needs only that many).
  for (const int f : {1, 2}) {
    const int g_count = f * f + f + 1;
    const NodeId n = 60;
    auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
    std::vector<NodeId> gs;
    for (int k = 1; k < g_count; ++k) {
      const auto idx = static_cast<NodeId>(k * n / g_count);
      (*bm)[static_cast<std::size_t>(idx)] = 1;
    }
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::unit();
    cfg.seed = 5;
    FcgNode::Params p;
    p.T = 0;
    p.f = f;
    p.sos_enabled = false;
    p.seed_colored = bm;
    Engine<FcgNode> eng(cfg, p);
    const RunMetrics m = eng.run();
    EXPECT_TRUE(m.all_active_delivered) << "f=" << f;
    EXPECT_FALSE(m.sos_triggered);
    EXPECT_FALSE(m.hit_max_steps) << "f=" << f;
  }
}

TEST(PaperEq3Eq4, TuningOptimaMatchThePaper) {
  // Fig. 3: OCG T_opt = 24; Fig. 5: CCG T_opt = 25 (N=1024, L=O=1,
  // eps = 6.93e-7).  Allow +-2 for quantile granularity.
  const double eps = paper_eps();
  EXPECT_NEAR(static_cast<double>(tune_ocg(1024, 1024, LogP::unit(), eps).T_opt),
              24.0, 2.0);
  EXPECT_NEAR(static_cast<double>(tune_ccg(1024, 1024, LogP::unit(), eps).T_opt),
              25.0, 2.0);
}

TEST(PaperEq5, FcgBoundDominatesSimulation) {
  // Eq. 5 is an upper bound: at its recommended T the simulated
  // completion never exceeds it.
  const NodeId n = 512;
  const double eps = 1e-3;
  const FcgTuning t = tune_fcg(n, n, LogP::unit(), eps, 1);
  TrialSpec spec;
  spec.algo = Algo::kFcg;
  spec.acfg.T = t.T_opt + 1;
  spec.acfg.fcg_f = 1;
  spec.n = n;
  spec.logp = LogP::unit();
  spec.seed = 4242;
  spec.trials = 400;
  const TrialAggregate agg = run_trials(spec);
  const Step bound =
      fcg_predicted_upper(n, n, spec.acfg.T, LogP::unit(), eps, 1);
  EXPECT_LE(agg.t_complete.max(), static_cast<double>(bound) + 2.0);
  EXPECT_EQ(agg.sos_trials, 0);
}

TEST(PaperTable7, HeadlineOrderingsHold) {
  // Scaled-down Table 7 (N = 1024 for speed): the orderings the paper's
  // abstract advertises.
  const NodeId n = 1024;
  const LogP pd = LogP::piz_daint();
  const double eps = 1e-5;
  const int trials = 60;
  const ScenarioResult gos = run_scenario(Algo::kGos, n, 0, pd, trials, 1, eps);
  const ScenarioResult ocg = run_scenario(Algo::kOcg, n, 0, pd, trials, 2, eps);
  const ScenarioResult ccg = run_scenario(Algo::kCcg, n, 0, pd, trials, 3, eps);
  const ScenarioResult fcg = run_scenario(Algo::kFcg, n, 0, pd, trials, 4, eps);
  const ModelRow big = big_model_row(n, pd);
  const ModelRow bfb = bfb_model_row(n, 0, pd);

  // Latency ordering: OCG <= CCG <= FCG < BIG < BFB.
  EXPECT_LE(ocg.lat_us, ccg.lat_us);
  EXPECT_LE(ccg.lat_us, fcg.lat_us);
  EXPECT_LT(fcg.lat_us, big.lat_us);   // "FCG ... 15% lower latency than BIG"
  EXPECT_LT(big.lat_us, bfb.lat_us);
  // "OCG ... 20% lower latency than GOS".
  EXPECT_LT(ocg.lat_us, 0.9 * gos.lat_us);
  // "OCG ... less messages (work) ... than GOS" (paper: 60% less).
  EXPECT_LT(ocg.work, 0.6 * gos.work);
  // BFB needs the fewest messages of all (paper: "BFB requires the least
  // amount of messages").
  EXPECT_LT(static_cast<double>(bfb.work), ocg.work);
  // Everything strongly consistent here except (possibly) OCG's eps tail.
  EXPECT_EQ(ccg.incon, 0.0);
  EXPECT_EQ(fcg.incon, 0.0);
}

TEST(PaperSection4C, ExpectedFailureArithmetic) {
  // f_hat ~ 2.69 failures for 4096 nodes / 12 h / MTBF 18304 h, and BFB's
  // 20%-online assumption gives exactly one restart.
  EXPECT_NEAR(FailureSchedule::expected_failures(4096), 2.685, 0.005);
  EXPECT_EQ(bfb_online_failures(3), 1);
  // CCG's in-run failure probability estimate p_hat = 3.4e-9 (Table 7
  // discussion): N * 55us / MTBF.
  const double p_hat = 4096.0 * 55e-6 / (18304.0 * 3600.0);
  EXPECT_NEAR(p_hat, 3.4e-9, 0.2e-9);
}

}  // namespace
}  // namespace cg
